package topo

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/units"
)

// jsonGraph is the on-disk representation of a Graph.
type jsonGraph struct {
	Name  string     `json:"name"`
	Nodes []jsonNode `json:"nodes"`
	Links []jsonLink `json:"links"`
	// Optional shared-risk link groups; absent for graphs without
	// correlated failures so older files encode byte-identically.
	SRLGs []jsonSRLG `json:"srlgs,omitempty"`
}

type jsonNode struct {
	ID   int    `json:"id"`
	Name string `json:"name,omitempty"`
}

type jsonLink struct {
	A        int     `json:"a"`
	B        int     `json:"b"`
	Capacity string  `json:"capacity"` // e.g. "10Gbps"
	DelayMS  float64 `json:"delay_ms,omitempty"`
	// Optional churn process; absent for always-up links so graphs
	// written before outage support encode byte-identically.
	OutageKind     string  `json:"outage_kind,omitempty"` // "fixed" or "exp"
	OutageUpMS     float64 `json:"outage_up_ms,omitempty"`
	OutageDownMS   float64 `json:"outage_down_ms,omitempty"`
	OutageDownRate string  `json:"outage_down_rate,omitempty"` // absent = hard outage
	// Optional maintenance calendar and per-packet loss; absent for
	// undisrupted links, same byte-identity contract as the churn fields.
	Maintenance         []jsonWindow `json:"maintenance,omitempty"`
	MaintenanceDownRate string       `json:"maintenance_down_rate,omitempty"` // absent = hard windows
	LossProb            float64      `json:"loss_prob,omitempty"`
}

type jsonWindow struct {
	StartMS float64 `json:"start_ms"`
	EndMS   float64 `json:"end_ms"`
}

type jsonSRLG struct {
	Name  string `json:"name"`
	Links []int  `json:"links"`
	// Shared disruption processes, same schemas as the per-link fields.
	OutageKind          string       `json:"outage_kind,omitempty"`
	OutageUpMS          float64      `json:"outage_up_ms,omitempty"`
	OutageDownMS        float64      `json:"outage_down_ms,omitempty"`
	OutageDownRate      string       `json:"outage_down_rate,omitempty"`
	Maintenance         []jsonWindow `json:"maintenance,omitempty"`
	MaintenanceDownRate string       `json:"maintenance_down_rate,omitempty"`
}

// encodeWindows / decodeCalendar translate calendar specs to and from
// their wire form; decode validates before returning.
func encodeWindows(ws []Window) []jsonWindow {
	out := make([]jsonWindow, len(ws))
	for i, w := range ws {
		out[i] = jsonWindow{
			StartMS: float64(w.Start) / float64(time.Millisecond),
			EndMS:   float64(w.End) / float64(time.Millisecond),
		}
	}
	return out
}

func decodeCalendar(ws []jsonWindow, downRate string) (CalendarSpec, error) {
	if downRate != "" && len(ws) == 0 {
		return CalendarSpec{}, fmt.Errorf("maintenance rate without maintenance windows")
	}
	var cal CalendarSpec
	for _, w := range ws {
		cal.Windows = append(cal.Windows, Window{
			Start: time.Duration(w.StartMS * float64(time.Millisecond)),
			End:   time.Duration(w.EndMS * float64(time.Millisecond)),
		})
	}
	if downRate != "" {
		rate, err := units.ParseBitRate(downRate)
		if err != nil {
			return CalendarSpec{}, fmt.Errorf("maintenance rate: %w", err)
		}
		cal.DownRate = rate
	}
	if err := cal.Validate(); err != nil {
		return CalendarSpec{}, err
	}
	return cal, nil
}

// decodeOutage translates the shared outage wire fields into a validated
// spec; all-empty fields decode as the zero (disabled) spec.
func decodeOutage(kind string, upMS, downMS float64, downRate string) (OutageSpec, error) {
	if kind == "" {
		if upMS != 0 || downMS != 0 || downRate != "" {
			return OutageSpec{}, fmt.Errorf("outage parameters without an outage kind")
		}
		return OutageSpec{}, nil
	}
	k, err := ParseOutageKind(kind)
	if err != nil {
		return OutageSpec{}, err
	}
	spec := OutageSpec{
		Kind: k,
		Up:   time.Duration(upMS * float64(time.Millisecond)),
		Down: time.Duration(downMS * float64(time.Millisecond)),
	}
	if downRate != "" {
		rate, err := units.ParseBitRate(downRate)
		if err != nil {
			return OutageSpec{}, fmt.Errorf("outage rate: %w", err)
		}
		spec.DownRate = rate
	}
	if err := spec.Validate(); err != nil {
		return OutageSpec{}, err
	}
	return spec, nil
}

// MarshalJSON encodes the graph with human-readable capacities.
func (g *Graph) MarshalJSON() ([]byte, error) {
	jg := jsonGraph{Name: g.name}
	for _, n := range g.nodes {
		jg.Nodes = append(jg.Nodes, jsonNode{ID: int(n.ID), Name: n.Name})
	}
	for _, l := range g.links {
		jl := jsonLink{
			A:        int(l.A),
			B:        int(l.B),
			Capacity: l.Capacity.String(),
			DelayMS:  float64(l.Delay) / float64(time.Millisecond),
		}
		if l.Outage.Enabled() {
			jl.OutageKind = l.Outage.Kind.String()
			jl.OutageUpMS = float64(l.Outage.Up) / float64(time.Millisecond)
			jl.OutageDownMS = float64(l.Outage.Down) / float64(time.Millisecond)
			if !l.Outage.Hard() {
				jl.OutageDownRate = l.Outage.DownRate.String()
			}
		}
		if l.Calendar.Enabled() {
			jl.Maintenance = encodeWindows(l.Calendar.Windows)
			if !l.Calendar.Hard() {
				jl.MaintenanceDownRate = l.Calendar.DownRate.String()
			}
		}
		jl.LossProb = l.LossProb
		jg.Links = append(jg.Links, jl)
	}
	for _, s := range g.srlgs {
		js := jsonSRLG{Name: s.Name}
		for _, id := range s.Links {
			js.Links = append(js.Links, int(id))
		}
		if s.Outage.Enabled() {
			js.OutageKind = s.Outage.Kind.String()
			js.OutageUpMS = float64(s.Outage.Up) / float64(time.Millisecond)
			js.OutageDownMS = float64(s.Outage.Down) / float64(time.Millisecond)
			if !s.Outage.Hard() {
				js.OutageDownRate = s.Outage.DownRate.String()
			}
		}
		if s.Calendar.Enabled() {
			js.Maintenance = encodeWindows(s.Calendar.Windows)
			if !s.Calendar.Hard() {
				js.MaintenanceDownRate = s.Calendar.DownRate.String()
			}
		}
		jg.SRLGs = append(jg.SRLGs, js)
	}
	return json.Marshal(jg)
}

// UnmarshalJSON decodes a graph previously written by MarshalJSON (or
// hand-authored in the same schema). Node IDs must be dense 0..n-1.
func (g *Graph) UnmarshalJSON(data []byte) error {
	var jg jsonGraph
	if err := json.Unmarshal(data, &jg); err != nil {
		return fmt.Errorf("topo: decode graph: %w", err)
	}
	fresh := New(jg.Name)
	for i, n := range jg.Nodes {
		if n.ID != i {
			return fmt.Errorf("topo: node IDs must be dense and ordered, got %d at position %d", n.ID, i)
		}
		fresh.AddNode(n.Name)
	}
	for _, l := range jg.Links {
		capacity, err := units.ParseBitRate(l.Capacity)
		if err != nil {
			return fmt.Errorf("topo: link %d-%d: %w", l.A, l.B, err)
		}
		delay := time.Duration(l.DelayMS * float64(time.Millisecond))
		id, err := fresh.AddLink(NodeID(l.A), NodeID(l.B), capacity, delay)
		if err != nil {
			return err
		}
		spec, err := decodeOutage(l.OutageKind, l.OutageUpMS, l.OutageDownMS, l.OutageDownRate)
		if err != nil {
			return fmt.Errorf("topo: link %d-%d: %w", l.A, l.B, err)
		}
		if spec.Kind != OutageNone {
			fresh.SetLinkOutage(id, spec)
		}
		if len(l.Maintenance) > 0 || l.MaintenanceDownRate != "" {
			cal, err := decodeCalendar(l.Maintenance, l.MaintenanceDownRate)
			if err != nil {
				return fmt.Errorf("topo: link %d-%d: %w", l.A, l.B, err)
			}
			fresh.SetLinkCalendar(id, cal)
		}
		if l.LossProb != 0 {
			if err := ValidateLossProb(l.LossProb); err != nil {
				return fmt.Errorf("topo: link %d-%d: %w", l.A, l.B, err)
			}
			fresh.SetLinkLoss(id, l.LossProb)
		}
	}
	for _, js := range jg.SRLGs {
		srlg := SRLG{Name: js.Name}
		for _, id := range js.Links {
			srlg.Links = append(srlg.Links, LinkID(id))
		}
		outage, err := decodeOutage(js.OutageKind, js.OutageUpMS, js.OutageDownMS, js.OutageDownRate)
		if err != nil {
			return fmt.Errorf("topo: srlg %q: %w", js.Name, err)
		}
		srlg.Outage = outage
		if len(js.Maintenance) > 0 || js.MaintenanceDownRate != "" {
			cal, err := decodeCalendar(js.Maintenance, js.MaintenanceDownRate)
			if err != nil {
				return fmt.Errorf("topo: srlg %q: %w", js.Name, err)
			}
			srlg.Calendar = cal
		}
		if err := fresh.AddSRLG(srlg); err != nil {
			return err
		}
	}
	*g = *fresh
	return nil
}

// WriteJSON writes the graph to w as indented JSON.
func (g *Graph) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(g)
}

// ReadJSON parses a graph from r.
func ReadJSON(r io.Reader) (*Graph, error) {
	g := New("")
	if err := json.NewDecoder(r).Decode(g); err != nil {
		return nil, err
	}
	return g, nil
}
