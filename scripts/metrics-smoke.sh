#!/bin/sh
# metrics-smoke.sh — end-to-end check of the live observability endpoint:
# run a small sweep with -metrics on an ephemeral port, scrape both
# exposures while the endpoint lingers on the final snapshot, and assert
# well-formed Prometheus text format and JSON. CI runs this so the HTTP
# surface cannot rot between releases.
set -eu

cd "$(dirname "$0")/.." || exit 1

workdir="$(mktemp -d)"
pids=""
cleanup() {
    for p in $pids; do
        kill "$p" 2>/dev/null || true
    done
    rm -rf "$workdir"
}
trap cleanup EXIT

echo "metrics-smoke: building cmd/sweep..." >&2
go build -o "$workdir/sweep" ./cmd/sweep

"$workdir/sweep" \
    -isps "VSNL (IN)" -policies sp,inrp -flows 30 \
    -capacity 100Mbps -demand 50Mbps -size 20MB -horizon 2s \
    -replicas 1 -seed 1 -workers 1 -q \
    -metrics 127.0.0.1:0 -metrics-linger 60s \
    >"$workdir/stdout" 2>"$workdir/stderr" &
pid=$!
pids="$pid"

# Wait for the sweep to finish and the endpoint to enter its linger
# phase; the address line appears first, the linger banner last.
addr=""
for _ in $(seq 1 100); do
    addr="$(sed -n 's/.*metrics listening on \(http:\/\/[0-9.:]*\).*/\1/p' "$workdir/stderr")"
    if [ -n "$addr" ] && grep -q "serving final snapshot" "$workdir/stderr"; then
        break
    fi
    if ! kill -0 "$pid" 2>/dev/null; then
        echo "metrics-smoke: sweep exited before serving; stderr:" >&2
        cat "$workdir/stderr" >&2
        exit 1
    fi
    sleep 0.2
done
if [ -z "$addr" ]; then
    echo "metrics-smoke: no metrics address on stderr" >&2
    cat "$workdir/stderr" >&2
    exit 1
fi
echo "metrics-smoke: scraping $addr" >&2

curl -fsS "$addr/metrics" >"$workdir/prom"
curl -fsS "$addr/snapshot" >"$workdir/snap"

fail=0
check() {
    file="$1"
    pattern="$2"
    what="$3"
    if ! grep -q "$pattern" "$file"; then
        echo "metrics-smoke: FAIL $what (pattern: $pattern)" >&2
        cat "$file" >&2
        fail=1
    fi
}

# Prometheus text format: TYPE headers and the final counter values of a
# 2-scenario sweep.
check "$workdir/prom" '^# TYPE sweep_scenarios_completed counter$' "prometheus TYPE line"
check "$workdir/prom" '^sweep_scenarios_completed 2$' "completed counter value"
check "$workdir/prom" '^flowsim_flows_admitted [1-9]' "flowsim counters present"

# JSON snapshot: named registry with counters and gauges sections.
check "$workdir/snap" '"registry": "sweep"' "snapshot registry name"
check "$workdir/snap" '"counters"' "snapshot counters section"
check "$workdir/snap" '"sweep_scenarios_completed": 2' "snapshot completed value"

# Sweep-service surface: a mini coordinator drained by one worker, its
# /metrics, /snapshot and /state scraped while it lingers on the final
# state. This keeps the coordinator's HTTP mux in the same no-rot
# contract as the plain -metrics endpoint.
echo "metrics-smoke: sweep-service scrape..." >&2
"$workdir/sweep" \
    -mode serve -grid chunk \
    -transports inrpp,aimd -transfers 1 -chunksize 10KB -chunks 5000 \
    -ingress 2Gbps -egress 1Gbps -buffer 1MB -horizon 1s \
    -replicas 1 -seed 1 -q \
    -checkpoint "$workdir/coord.jsonl" -listen 127.0.0.1:0 \
    -metrics-linger 60s \
    >"$workdir/coord.out" 2>"$workdir/coord.err" &
coord=$!
pids="$pids $coord"

surl=""
for _ in $(seq 1 100); do
    surl="$(sed -n 's/.*coordinator listening on \(http:\/\/[0-9.:]*\).*/\1/p' "$workdir/coord.err")"
    [ -n "$surl" ] && break
    if ! kill -0 "$coord" 2>/dev/null; then
        echo "metrics-smoke: coordinator exited before listening; stderr:" >&2
        cat "$workdir/coord.err" >&2
        exit 1
    fi
    sleep 0.1
done
if [ -z "$surl" ]; then
    echo "metrics-smoke: no coordinator address on stderr" >&2
    cat "$workdir/coord.err" >&2
    exit 1
fi

"$workdir/sweep" -mode work -grid chunk \
    -transports inrpp,aimd -transfers 1 -chunksize 10KB -chunks 5000 \
    -ingress 2Gbps -egress 1Gbps -buffer 1MB -horizon 1s \
    -replicas 1 -seed 1 -q \
    -coordinator "$surl" -worker-name smoke -poll 100ms \
    2>"$workdir/worker.err" &
pids="$pids $!"

for _ in $(seq 1 150); do
    if grep -q "serving final state" "$workdir/coord.err"; then
        break
    fi
    sleep 0.2
done
if ! grep -q "serving final state" "$workdir/coord.err"; then
    echo "metrics-smoke: coordinator never reached its linger phase" >&2
    cat "$workdir/coord.err" "$workdir/worker.err" >&2
    exit 1
fi
echo "metrics-smoke: scraping $surl" >&2

curl -fsS "$surl/metrics" >"$workdir/coord.prom"
curl -fsS "$surl/snapshot" >"$workdir/coord.snap"
curl -fsS "$surl/state" >"$workdir/coord.state"

check "$workdir/coord.prom" '^# TYPE sweepd_leases_granted counter$' "coordinator prometheus TYPE line"
check "$workdir/coord.prom" '^sweepd_records_accepted 2$' "coordinator accepted counter value"
check "$workdir/coord.snap" '"sweepd_scenarios_total": 2' "coordinator snapshot total"
check "$workdir/coord.state" '"complete":true' "coordinator /state completion"

if [ "$fail" = 0 ]; then
    echo "metrics-smoke: ok" >&2
fi
exit "$fail"
