package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/units"
)

func TestCustodyBasics(t *testing.T) {
	c := NewCustody(100)
	if !c.Offer(1, 60, 0) {
		t.Fatal("first offer should fit")
	}
	if !c.Offer(2, 40, time.Second) {
		t.Fatal("second offer should exactly fill")
	}
	if c.Offer(3, 1, time.Second) {
		t.Fatal("overfull offer should be rejected")
	}
	if c.Used() != 100 || c.Free() != 0 || c.Len() != 2 {
		t.Errorf("used/free/len = %v/%v/%d", c.Used(), c.Free(), c.Len())
	}

	item, ok := c.Pop(2 * time.Second)
	if !ok || item.Key != 1 || item.Size != 60 {
		t.Fatalf("Pop = %+v, %v; want key 1", item, ok)
	}
	if c.Used() != 40 {
		t.Errorf("used after pop = %v, want 40", c.Used())
	}
	if peek, ok := c.Peek(); !ok || peek.Key != 2 {
		t.Errorf("Peek = %+v, want key 2", peek)
	}

	st := c.Stats()
	if st.Accepted != 2 || st.Rejected != 1 || st.Drained != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.HighWater != 100 {
		t.Errorf("high water = %v, want 100", st.HighWater)
	}
	// Key 1 sat from t=0 to t=2s.
	if got := c.ResidencySeconds().Mean(); got != 2 {
		t.Errorf("residency mean = %v, want 2", got)
	}
}

func TestCustodyZeroCapacity(t *testing.T) {
	c := NewCustody(0)
	if c.Offer(1, 1, 0) {
		t.Error("zero-capacity store must reject")
	}
	if _, ok := c.Pop(0); ok {
		t.Error("empty pop should fail")
	}
}

// TestCustodyConservation checks the store-and-forward invariant: accepted
// bytes = drained bytes + bytes still in custody, under arbitrary
// offer/pop interleavings.
func TestCustodyConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := NewCustody(units.ByteSize(1 + rng.Intn(10000)))
		now := time.Duration(0)
		for i := 0; i < 500; i++ {
			now += time.Duration(rng.Intn(1000)) * time.Microsecond
			if rng.Intn(2) == 0 {
				c.Offer(uint64(i), units.ByteSize(1+rng.Intn(200)), now)
			} else {
				c.Pop(now)
			}
		}
		st := c.Stats()
		if st.AcceptedBytes != st.DrainedBytes+c.Used() {
			return false
		}
		if c.Used() > c.Capacity() || c.Used() < 0 {
			return false
		}
		if st.HighWater > c.Capacity() {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCustodyFIFOOrder(t *testing.T) {
	c := NewCustody(units.GB)
	for i := 0; i < 300; i++ {
		if !c.Offer(uint64(i), units.KB, 0) {
			t.Fatal("offer failed")
		}
	}
	// Interleave pops to exercise the compaction path.
	for i := 0; i < 300; i++ {
		item, ok := c.Pop(time.Second)
		if !ok || item.Key != uint64(i) {
			t.Fatalf("pop %d = %+v, want key %d", i, item, i)
		}
	}
}

func TestCustodyPaperExample(t *testing.T) {
	// §3.3: a 10GB cache behind a 40Gbps link holds 2 seconds of traffic.
	c := NewCustody(10 * units.GB)
	chunk := 10 * units.MB
	n := 0
	for c.Offer(uint64(n), chunk, 0) {
		n++
	}
	stored := units.ByteSize(n) * chunk
	holdTime := (40 * units.Gbps).TransmissionTime(stored)
	if holdTime != 2*time.Second {
		t.Errorf("custody absorbs %v of 40Gbps traffic, want 2s", holdTime)
	}
}

func TestCustodyMeanOccupancy(t *testing.T) {
	c := NewCustody(1000)
	c.Offer(1, 100, 0)     // 100 bytes over [0, 2s)
	c.Pop(2 * time.Second) // 0 bytes over [2s, 4s)
	got := c.MeanOccupancyAt(4 * time.Second)
	if got != 50 {
		t.Errorf("mean occupancy = %v, want 50", got)
	}
}

func TestLRUBasics(t *testing.T) {
	l := NewLRU(100)
	l.Put(1, 40)
	l.Put(2, 40)
	if !l.Get(1) || !l.Get(2) {
		t.Fatal("both objects should be cached")
	}
	l.Put(3, 40) // evicts key 1 (LRU after the Get sequence... key 1 was refreshed first, so key 1 is older than 2)
	if l.Get(1) {
		t.Error("key 1 should have been evicted")
	}
	if !l.Get(2) || !l.Get(3) {
		t.Error("keys 2 and 3 should remain")
	}
	if l.Used() != 80 || l.Len() != 2 {
		t.Errorf("used/len = %v/%d, want 80/2", l.Used(), l.Len())
	}
}

func TestLRUHitRatio(t *testing.T) {
	l := NewLRU(100)
	if l.HitRatio() != 0 {
		t.Error("initial hit ratio should be 0")
	}
	l.Put(1, 10)
	l.Get(1) // hit
	l.Get(2) // miss
	if l.HitRatio() != 0.5 {
		t.Errorf("hit ratio = %v, want 0.5", l.HitRatio())
	}
}

func TestLRURejectsOversized(t *testing.T) {
	l := NewLRU(10)
	l.Put(1, 11)
	if l.Contains(1) || l.Used() != 0 {
		t.Error("oversized object should not be admitted")
	}
}

func TestLRUCapacityInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		capacity := units.ByteSize(1 + rng.Intn(1000))
		l := NewLRU(capacity)
		for i := 0; i < 300; i++ {
			switch rng.Intn(3) {
			case 0, 1:
				l.Put(uint64(rng.Intn(50)), units.ByteSize(1+rng.Intn(100)))
			case 2:
				l.Get(uint64(rng.Intn(50)))
			}
			if l.Used() > capacity || l.Used() < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestLRURefreshDoesNotDuplicate(t *testing.T) {
	l := NewLRU(100)
	l.Put(1, 30)
	l.Put(1, 30)
	if l.Len() != 1 || l.Used() != 30 {
		t.Errorf("refresh duplicated: len=%d used=%v", l.Len(), l.Used())
	}
}
