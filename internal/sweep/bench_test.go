package sweep

import (
	"context"
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/topo"
	"repro/internal/units"
)

// benchScenarios builds the 32-scenario flowsim sweep used to track the
// worker-pool speedup: 2 policies × 4 load levels × 4 seed replicas on the
// VSNL topology. The per-op metric to compare across sub-benchmarks is
// ns/op; on a multi-core host workers=N must land ≥2× below workers=1.
func benchScenarios() []Scenario {
	grid := NewGrid().
		Axis("policy", "sp", "inrp").
		Axis("flows", "60", "120", "180", "240").
		SeedAxes("flows")
	return grid.Expand(1, 4, func(pt Point, replica int, seed int64) RunFunc {
		spec := FlowSpec{
			ISP:       topo.VSNL,
			Capacity:  100 * units.Mbps,
			MeanSize:  40 * units.MB,
			DemandCap: 50 * units.Mbps,
			Horizon:   6 * time.Second,
		}
		fmt.Sscanf(pt.Get("flows"), "%d", &spec.Flows)
		spec.Policy = MustParsePolicy(pt.Get("policy"))
		return spec.Run(seed)
	})
}

// BenchmarkSweepWorkers times the same 32-scenario sweep at 1 worker and at
// GOMAXPROCS workers. The aggregated output is asserted identical, so the
// speedup never comes at the cost of determinism.
func BenchmarkSweepWorkers(b *testing.B) {
	scenarios := benchScenarios()
	golden := ""
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var results []Result
			for i := 0; i < b.N; i++ {
				results = (&Runner{Workers: workers}).Run(context.Background(), scenarios)
			}
			out := Table("bench", Aggregated(results)).String()
			if golden == "" {
				golden = out
			} else if out != golden {
				b.Fatal("aggregated output changed with worker count")
			}
			b.ReportMetric(float64(len(scenarios)), "scenarios")
		})
	}
}
