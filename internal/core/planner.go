package core

import (
	"repro/internal/route"
	"repro/internal/topo"
	"repro/internal/units"
)

// PlannerMode selects how the detour phase assigns overflow to candidate
// sub-paths (§3.3 discusses both variants).
type PlannerMode int

const (
	// CapacityAware assigns overflow respecting the residual capacity of
	// detour links, which the paper enables by having routers keep state
	// for the outgoing interfaces of their one-hop neighbours.
	CapacityAware PlannerMode = iota
	// Blind spreads overflow equally across candidates with no knowledge
	// of their load — the zero-state variant, kept for ablation.
	Blind
)

// ResidualFunc reports the spare per-direction capacity of an arc at
// planning time.
type ResidualFunc func(topo.Arc) units.BitRate

// Grant is one detour assignment: a rate sent over a sub-path around the
// congested link.
type Grant struct {
	Sub  route.Subpath
	Arcs []topo.Arc // the sub-path's directed arcs, tail→head of the congested arc
	Rate units.BitRate
}

// Planner finds and sizes detours around congested links, caching the
// candidate enumeration — in both orientations, with the sub-paths
// pre-resolved to directed arcs — per link. It is the engine of the
// detour phase, shared by both simulators. Plan reuses internal scratch,
// so a planner must not be shared across goroutines (each simulation run
// owns its own, as before).
type Planner struct {
	g             *topo.Graph
	mode          PlannerMode
	extraHop      bool
	maxCandidates int

	cache map[cacheKey]*candSet

	// Plan scratch, reused across calls: the returned grants and the
	// donor-arc consumption ledger. Candidate sets are ≤ MaxCandidates
	// with ≤ 2 arcs each, so the ledger is a linear-scanned pair list.
	grants       []Grant
	consumedArcs []topo.Arc
	consumedVals []units.BitRate
}

// cacheKey identifies one orientation of one link's candidate set.
type cacheKey struct {
	id  topo.LinkID
	dir topo.Direction
}

// candSet is a cached candidate enumeration: the oriented sub-paths and
// their directed-arc resolutions, index-aligned. Both slices are stable
// for the planner's lifetime, so callers may retain references.
type candSet struct {
	subs []route.Subpath
	arcs [][]topo.Arc
}

// PlannerConfig tunes detour planning.
type PlannerConfig struct {
	Mode PlannerMode
	// ExtraHop allows two-hop detour sub-paths in addition to one-hop
	// ones — the paper's "nodes on the detour path can further detour,
	// but for one extra hop only". Default true (the Fig. 4 setting).
	ExtraHop bool
	// MaxCandidates caps the candidate sub-paths considered per link
	// (≤ 0: unlimited).
	MaxCandidates int
}

// DefaultPlannerConfig returns the Fig. 4 evaluation setting: capacity-
// aware, one-hop detours plus one extra hop.
func DefaultPlannerConfig() PlannerConfig {
	return PlannerConfig{Mode: CapacityAware, ExtraHop: true, MaxCandidates: 8}
}

// NewPlanner returns a planner over g.
func NewPlanner(g *topo.Graph, cfg PlannerConfig) *Planner {
	return &Planner{
		g:             g,
		mode:          cfg.Mode,
		extraHop:      cfg.ExtraHop,
		maxCandidates: cfg.MaxCandidates,
		cache:         make(map[cacheKey]*candSet),
	}
}

// Candidates returns the detour sub-paths around link id, oriented from
// the congested arc's tail to its head. The slice is cached; callers
// must not mutate it.
func (p *Planner) Candidates(id topo.LinkID, dir topo.Direction) []route.Subpath {
	return p.candidates(id, dir).subs
}

// candidates returns the cached oriented candidate set for one direction
// of a link, building (and arc-resolving) it on first use.
func (p *Planner) candidates(id topo.LinkID, dir topo.Direction) *candSet {
	if set, ok := p.cache[cacheKey{id, dir}]; ok {
		return set
	}
	fwd, ok := p.cache[cacheKey{id, topo.Forward}]
	if !ok {
		fwd = p.resolve(route.Subpaths(p.g, id, p.extraHop, p.maxCandidates))
		p.cache[cacheKey{id, topo.Forward}] = fwd
	}
	if dir == topo.Forward {
		return fwd
	}
	// Reverse orientation for the B→A direction.
	rev := make([]route.Subpath, len(fwd.subs))
	for i, s := range fwd.subs {
		rp := make(route.Path, len(s.Path))
		for j, n := range s.Path {
			rp[len(s.Path)-1-j] = n
		}
		rev[i] = route.Subpath{Path: rp, Extra: s.Extra}
	}
	set := p.resolve(rev)
	p.cache[cacheKey{id, topo.Reverse}] = set
	return set
}

// resolve pairs a candidate list with its directed-arc resolutions.
func (p *Planner) resolve(subs []route.Subpath) *candSet {
	arcs := make([][]topo.Arc, len(subs))
	for i, s := range subs {
		arcs[i] = p.subpathArcs(s)
	}
	return &candSet{subs: subs, arcs: arcs}
}

// HasDetour reports whether at least one detour sub-path with positive
// residual capacity exists around the arc. With a nil residual it only
// checks topological existence.
func (p *Planner) HasDetour(arc topo.Arc, residual ResidualFunc) bool {
	set := p.candidates(arc.Link, arc.Dir)
	for i := range set.subs {
		if residual == nil {
			return true
		}
		if arcsResidual(set.arcs[i], residual) > 0 {
			return true
		}
	}
	return false
}

// Plan assigns up to overflow of traffic to detour sub-paths around the
// given congested arc. It returns the grants and the unplaced remainder
// (which the caller must cache and back-pressure).
//
// CapacityAware mode fills candidates shortest-first against their
// residual capacity, never over-committing a donor arc (grants earlier in
// the list reduce the residual seen by later candidates sharing an arc).
// Blind mode splits the overflow equally across all candidates, capped by
// residual only at the caller's peril — it models detouring with no
// neighbour state and is kept for ablation.
// The returned grants slice is planner-owned scratch, valid until the
// next Plan call; the Arcs slices inside it are cached and stable for
// the planner's lifetime.
func (p *Planner) Plan(arc topo.Arc, overflow units.BitRate, residual ResidualFunc) (grants []Grant, unplaced units.BitRate) {
	if overflow <= 0 {
		return nil, 0
	}
	set := p.candidates(arc.Link, arc.Dir)
	if len(set.subs) == 0 {
		return nil, overflow
	}
	grants = p.grants[:0]

	switch p.mode {
	case Blind:
		share := overflow / units.BitRate(len(set.subs))
		for i, sub := range set.subs {
			grants = append(grants, Grant{Sub: sub, Arcs: set.arcs[i], Rate: share})
		}
		p.grants = grants
		return grants, 0

	default: // CapacityAware
		// Track how much of each donor arc this plan has consumed so far,
		// so overlapping candidates share residuals consistently.
		p.consumedArcs = p.consumedArcs[:0]
		p.consumedVals = p.consumedVals[:0]
		remaining := overflow
		for i, sub := range set.subs {
			if remaining <= 0 {
				break
			}
			arcs := set.arcs[i]
			avail := remaining
			for _, a := range arcs {
				r := residual(a) - p.consumed(a)
				if r < avail {
					avail = r
				}
			}
			if avail <= 0 {
				continue
			}
			for _, a := range arcs {
				p.consume(a, avail)
			}
			grants = append(grants, Grant{Sub: sub, Arcs: arcs, Rate: avail})
			remaining -= avail
		}
		p.grants = grants
		return grants, remaining
	}
}

// consumed returns how much of a donor arc this plan has already taken.
func (p *Planner) consumed(a topo.Arc) units.BitRate {
	for i, b := range p.consumedArcs {
		if b == a {
			return p.consumedVals[i]
		}
	}
	return 0
}

// consume records a donor-arc allocation in the plan's ledger.
func (p *Planner) consume(a topo.Arc, v units.BitRate) {
	for i, b := range p.consumedArcs {
		if b == a {
			p.consumedVals[i] += v
			return
		}
	}
	p.consumedArcs = append(p.consumedArcs, a)
	p.consumedVals = append(p.consumedVals, v)
}

// arcsResidual returns the bottleneck residual along resolved arcs.
func arcsResidual(arcs []topo.Arc, residual ResidualFunc) units.BitRate {
	min := units.BitRate(0)
	for i, a := range arcs {
		r := residual(a)
		if i == 0 || r < min {
			min = r
		}
	}
	return min
}

// subpathArcs resolves the sub-path to directed arcs. Sub-paths come from
// route.Subpaths over the same graph, so resolution cannot fail.
func (p *Planner) subpathArcs(sub route.Subpath) []topo.Arc {
	arcs, err := sub.Path.Arcs(p.g)
	if err != nil {
		panic("core: invalid detour sub-path: " + err.Error())
	}
	return arcs
}
