package topo

import (
	"fmt"
	"math"
	"strings"
	"time"

	"repro/internal/units"
)

// Window is one absolute maintenance down-window: the affected arcs are
// down over [Start, End), measured in simulation time from t=0.
type Window struct {
	Start, End time.Duration
}

// String renders the half-open interval, e.g. "[1s,2.5s)".
func (w Window) String() string { return fmt.Sprintf("[%s,%s)", w.Start, w.End) }

// CalendarSpec declares scheduled maintenance on a link or group: an
// explicit, sorted, non-overlapping list of absolute down-windows. Unlike
// OutageSpec there is no randomness at all — calendar transitions fire at
// exactly their declared instants — and a calendar composes with any
// stochastic churn on the same arc: an arc is down while at least one
// active cause (churn phase, calendar window, SRLG process) holds it down.
//
// The zero value declares no maintenance.
type CalendarSpec struct {
	// Windows are the down-windows, sorted by Start and non-overlapping.
	Windows []Window
	// DownRate is the per-direction capacity while inside a window. Zero
	// is a hard outage (the serializer pauses and in-flight packets are
	// lost); a positive rate is a degraded period — the same contract as
	// OutageSpec.DownRate.
	DownRate units.BitRate
}

// Enabled reports whether the calendar declares any windows.
func (c CalendarSpec) Enabled() bool { return len(c.Windows) > 0 }

// Hard reports whether windows are full outages rather than degraded-rate
// periods.
func (c CalendarSpec) Hard() bool { return c.DownRate == 0 }

// Validate checks the calendar invariants: every window non-empty with
// 0 <= Start < End, the list sorted by Start and non-overlapping, and the
// degraded rate non-negative.
func (c CalendarSpec) Validate() error {
	for i, w := range c.Windows {
		if w.Start < 0 {
			return fmt.Errorf("calendar window %d %s starts before t=0", i, w)
		}
		if w.End <= w.Start {
			return fmt.Errorf("calendar window %d %s is empty or inverted", i, w)
		}
		if i > 0 && w.Start < c.Windows[i-1].End {
			return fmt.Errorf("calendar windows %d %s and %d %s overlap or are unsorted",
				i-1, c.Windows[i-1], i, w)
		}
	}
	if c.DownRate < 0 {
		return fmt.Errorf("calendar down rate %v is negative", c.DownRate)
	}
	return nil
}

// String renders the windows compactly in the syntax ParseWindows accepts,
// e.g. "1s-2s;4s-5s" (plus " rate=..." for degraded windows); the zero
// spec renders as "none".
func (c CalendarSpec) String() string {
	if !c.Enabled() {
		return "none"
	}
	parts := make([]string, len(c.Windows))
	for i, w := range c.Windows {
		parts[i] = fmt.Sprintf("%s-%s", w.Start, w.End)
	}
	s := strings.Join(parts, ";")
	if !c.Hard() {
		s += " rate=" + c.DownRate.String()
	}
	return s
}

// ParseWindows parses a semicolon-separated list of absolute down-windows,
// e.g. "1s-2s;4.5s-6s". Each element is "<start>-<end>" in Go duration
// syntax. The empty string parses as no windows. The result is not
// validated for ordering — wrap it in a CalendarSpec and call Validate.
func ParseWindows(s string) ([]Window, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []Window
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		lo, hi, ok := strings.Cut(part, "-")
		if !ok {
			return nil, fmt.Errorf("topo: window %q: want <start>-<end>", part)
		}
		start, err := time.ParseDuration(strings.TrimSpace(lo))
		if err != nil {
			return nil, fmt.Errorf("topo: window %q start: %w", part, err)
		}
		end, err := time.ParseDuration(strings.TrimSpace(hi))
		if err != nil {
			return nil, fmt.Errorf("topo: window %q end: %w", part, err)
		}
		out = append(out, Window{Start: start, End: end})
	}
	return out, nil
}

// SRLG is a shared-risk link group: a named set of links that fail
// together because they share fate (a conduit, a line card, a power
// feed). One seeded outage process and/or one maintenance calendar drives
// the whole group: when it enters a down phase, every arc of every member
// link goes down at the same instant — a correlated failure — and the
// group recovers together.
type SRLG struct {
	Name     string
	Links    []LinkID
	Outage   OutageSpec   // optional stochastic process shared by the group
	Calendar CalendarSpec // optional maintenance shared by the group
}

// Enabled reports whether the group declares any disruption at all.
func (s SRLG) Enabled() bool { return s.Outage.Enabled() || s.Calendar.Enabled() }

// AddSRLG registers a shared-risk link group on the graph. The group must
// be named, name a non-empty set of distinct existing links, carry valid
// outage/calendar specs, and not reuse the name of an earlier group.
func (g *Graph) AddSRLG(s SRLG) error {
	if s.Name == "" {
		return fmt.Errorf("topo: SRLG needs a name")
	}
	for _, prev := range g.srlgs {
		if prev.Name == s.Name {
			return fmt.Errorf("topo: duplicate SRLG %q", s.Name)
		}
	}
	if len(s.Links) == 0 {
		return fmt.Errorf("topo: SRLG %q names no links", s.Name)
	}
	seen := make(map[LinkID]bool, len(s.Links))
	for _, id := range s.Links {
		if id < 0 || int(id) >= len(g.links) {
			return fmt.Errorf("topo: SRLG %q names unknown link %d (graph %q has %d links)",
				s.Name, id, g.name, len(g.links))
		}
		if seen[id] {
			return fmt.Errorf("topo: SRLG %q names link %d twice", s.Name, id)
		}
		seen[id] = true
	}
	if err := s.Outage.Validate(); err != nil {
		return fmt.Errorf("topo: SRLG %q: %w", s.Name, err)
	}
	if err := s.Calendar.Validate(); err != nil {
		return fmt.Errorf("topo: SRLG %q: %w", s.Name, err)
	}
	g.srlgs = append(g.srlgs, cloneSRLG(s))
	return nil
}

// MustAddSRLG is AddSRLG for construction code where a failure is a bug.
func (g *Graph) MustAddSRLG(s SRLG) {
	if err := g.AddSRLG(s); err != nil {
		panic(err)
	}
}

// SRLGs returns the registered groups in insertion order. The returned
// slice is shared; do not modify it.
func (g *Graph) SRLGs() []SRLG { return g.srlgs }

// SetLinkCalendar declares scheduled maintenance on an existing link. Like
// SetLinkOutage it panics loudly on an unknown link or an invalid spec —
// both are construction-time programming errors.
func (g *Graph) SetLinkCalendar(id LinkID, c CalendarSpec) {
	g.mustLink(id, "SetLinkCalendar")
	if err := c.Validate(); err != nil {
		panic(fmt.Sprintf("topo: SetLinkCalendar(%d): %v", id, err))
	}
	c.Windows = append([]Window(nil), c.Windows...)
	g.links[id].Calendar = c
}

// SetLinkLoss declares a per-packet drop probability on an existing link,
// applied independently in each direction by the simulator consuming the
// graph (from a seeded per-arc stream — the graph only carries the
// declaration). It panics loudly on an unknown link or a probability
// outside [0,1].
func (g *Graph) SetLinkLoss(id LinkID, p float64) {
	g.mustLink(id, "SetLinkLoss")
	if err := ValidateLossProb(p); err != nil {
		panic(fmt.Sprintf("topo: SetLinkLoss(%d): %v", id, err))
	}
	g.links[id].LossProb = p
}

// ValidateLossProb rejects per-packet loss probabilities outside [0,1]
// (including NaN).
func ValidateLossProb(p float64) error {
	if math.IsNaN(p) || p < 0 || p > 1 {
		return fmt.Errorf("loss probability %v outside [0,1]", p)
	}
	return nil
}

// mustLink panics with a descriptive message when id is not a link of g —
// loud and precise instead of an index-out-of-range from deep inside a
// setter.
func (g *Graph) mustLink(id LinkID, op string) {
	if id < 0 || int(id) >= len(g.links) {
		panic(fmt.Sprintf("topo: %s: unknown link %d (graph %q has %d links)", op, id, g.name, len(g.links)))
	}
}

// cloneSRLG deep-copies the group's slices so later caller mutations
// cannot reach the graph's registered copy.
func cloneSRLG(s SRLG) SRLG {
	s.Links = append([]LinkID(nil), s.Links...)
	s.Calendar.Windows = append([]Window(nil), s.Calendar.Windows...)
	return s
}
