package experiments

import (
	"context"
	"fmt"

	"repro/internal/sweep"
)

// runExperiment executes one experiment grid the way cmd/sweep runs its
// grids: an optional shard restricts execution to one slice of the
// deterministic partition, and an optional checkpoint file both restores
// previously completed scenarios and streams new completions to disk.
// It is the shared engine behind Fig4 and Custody, so the two
// multi-scenario experiment drivers can be split across machines with
// the same guarantees as a CLI sweep: byte-identical aggregate output at
// any worker count, across kill/resume, and — after Fig4Merge or
// CustodyMerge — at any shard count.
func runExperiment(workers int, shard sweep.Shard, checkpoint, label string, scenarios []sweep.Scenario) ([]sweep.Result, error) {
	if err := shard.Validate(); err != nil {
		return nil, err
	}
	runner := &sweep.Runner{Workers: workers, Shard: shard}
	if checkpoint == "" {
		return runner.Run(context.Background(), scenarios), nil
	}
	prior, _, err := sweep.LoadCheckpoint(checkpoint, label, scenarios)
	if err != nil {
		return nil, err
	}
	cp, err := sweep.NewCheckpoint(checkpoint, label)
	if err != nil {
		return nil, err
	}
	runner.Progress = cp.Progress(nil)
	results := runner.Resume(context.Background(), scenarios, prior)
	if err := cp.Close(); err != nil {
		return nil, fmt.Errorf("experiments: checkpoint: %w", err)
	}
	return results, nil
}
