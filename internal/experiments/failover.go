package experiments

import (
	"fmt"
	"strconv"
	"time"

	"repro/internal/chunknet"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/sweep"
	"repro/internal/topo"
	"repro/internal/units"
)

// FailoverProfile is one failure regime of the failover experiment: a
// detour of a given capacity beside the bottleneck, plus the failure
// process (stochastic churn, scheduled maintenance, or both) that takes
// the bottleneck down. The two default profiles bracket the recovery
// frontier: "blackout" (permanent failure, full-rate detour) is the
// regime where rerouting saves the transfer, "flutter" (rapid hard
// churn, thin detour) the regime where custody-and-wait wins because
// rerouting keeps committing chunks to a path that can't carry them.
type FailoverProfile struct {
	Name        string
	DetourRate  units.BitRate
	Outage      topo.OutageSpec
	Maintenance []topo.Window
}

// FailoverConfig parameterises the failover-replanning experiment: the
// custody diamond (chain plus a detour node beside the bottleneck),
// swept over failure profile × correlation × custody budget × recovery
// strategy. Strategies at one (profile, correlation) point share seeds,
// so each comparison replays the identical failure trace and the result
// isolates the recovery policy.
type FailoverConfig struct {
	// IngressRate and EgressRate set the chain links (defaults 800Mbps →
	// 1Gbps). The ingress rate is also the INRPP request pacing, and the
	// default keeps it below the bottleneck so the interface never enters
	// the congestion detour phase — only failover policy distinguishes
	// the strategies.
	IngressRate units.BitRate
	EgressRate  units.BitRate
	// Buffer is the AIMD/ARC drop-tail buffer — unused by the default
	// all-INRPP grid but kept so the spec stays fully determined.
	Buffer units.ByteSize
	// ChunkSize (default 1MB) and Chunks per transfer (default 300 =
	// 300MB offered).
	ChunkSize units.ByteSize
	Chunks    int64
	// Horizon bounds each run (default 15s — long enough for
	// custody-and-wait to ride out flutter, short enough that a transfer
	// trapped on the thin detour cannot finish).
	Horizon time.Duration

	// Custodies is the custody-budget axis (default 32MB, 1GB: one
	// budget back-pressure saturates mid-run, one that absorbs the whole
	// transfer).
	Custodies []units.ByteSize
	// Strategies is the recovery-strategy axis (default hold, reroute,
	// both).
	Strategies []chunknet.FailoverMode
	// Correlations is the failure-correlation axis (default false, true).
	// A correlated cell groups the bottleneck and the detour's return
	// link into one SRLG, so the escape route fails with the nominal
	// path — the regime where no recovery strategy can win.
	Correlations []bool
	// Profiles lists the failure regimes (default blackout + flutter,
	// scaled to the chain rates).
	Profiles []FailoverProfile

	// Seeds is the number of failure realizations per grid point
	// (default 1 — the default profiles are deterministic, so extra
	// seeds replay identical runs).
	Seeds int
	// Workers bounds the sweep parallelism (default GOMAXPROCS). The
	// outcome is identical at any worker count.
	Workers int
	// Shard restricts the run to one slice of the deterministic scenario
	// partition; combine shard checkpoints with FailoverMerge.
	Shard sweep.Shard
	// Checkpoint, when non-empty, streams completed scenarios to this
	// JSONL file and restores them on rerun.
	Checkpoint string
	// Obs and Trace thread observability into every scenario.
	Obs   *obs.Registry
	Trace *obs.Trace
}

func (c *FailoverConfig) applyDefaults() {
	if c.IngressRate == 0 {
		c.IngressRate = 800 * units.Mbps
	}
	if c.EgressRate == 0 {
		c.EgressRate = units.Gbps
	}
	if c.Buffer == 0 {
		c.Buffer = 25 * units.MB
	}
	if c.ChunkSize == 0 {
		c.ChunkSize = units.MB
	}
	if c.Chunks == 0 {
		c.Chunks = 300
	}
	if c.Horizon == 0 {
		c.Horizon = 15 * time.Second
	}
	if len(c.Custodies) == 0 {
		c.Custodies = []units.ByteSize{32 * units.MB, units.GB}
	}
	if len(c.Strategies) == 0 {
		c.Strategies = []chunknet.FailoverMode{
			chunknet.FailoverHold, chunknet.FailoverReroute, chunknet.FailoverBoth,
		}
	}
	if len(c.Correlations) == 0 {
		c.Correlations = []bool{false, true}
	}
	if len(c.Profiles) == 0 {
		c.Profiles = []FailoverProfile{
			{
				// The bottleneck dies at 1s and stays down past any
				// horizon; the detour carries the full chain rate.
				Name:       "blackout",
				DetourRate: c.EgressRate,
				Maintenance: []topo.Window{
					{Start: time.Second, End: 10 * time.Minute},
				},
			},
			{
				// Rapid hard flutter (37.5% duty cycle) with only a
				// twentieth-rate detour: riding the duty cycle sustains
				// 3×EgressRate/8, the detour only EgressRate/20.
				Name:       "flutter",
				DetourRate: c.EgressRate / 20,
				Outage: topo.OutageSpec{
					Kind: topo.OutageFixed,
					Up:   300 * time.Millisecond,
					Down: 500 * time.Millisecond,
				},
			},
		}
	}
	if c.Seeds == 0 {
		c.Seeds = 1
	}
}

// FailoverRow is one (profile, correlation, custody, strategy) cell of
// the result.
type FailoverRow struct {
	Profile    string
	Correlated bool
	Custody    units.ByteSize
	Strategy   chunknet.FailoverMode

	// CompletedShare is the mean fraction of transfers that finished
	// inside the horizon; MeanCompletionS averages the completion times
	// of those that did (0 when none completed — the stall signature).
	CompletedShare  float64
	MeanCompletionS float64
	DeliveredShare  float64
	DetourFailovers float64
	Evacuated       float64
	CustodyPeak     float64
	ArcDownS        float64
}

// Completed reports whether this cell's transfers all finished within
// the horizon on average.
func (r FailoverRow) Completed() bool { return r.CompletedShare >= 1 }

// FailoverResult is the experiment outcome: rows in grid order (profile
// outermost, then correlation, custody, strategy), ready to read as the
// recovery-strategy frontier.
type FailoverResult struct {
	Rows []FailoverRow
}

// Row returns the cell at the given coordinates, or false when that
// point was not part of the run (a sharded partial, or an axis value
// outside the config).
func (r *FailoverResult) Row(profile string, correlated bool, custody units.ByteSize, strategy chunknet.FailoverMode) (FailoverRow, bool) {
	for _, row := range r.Rows {
		if row.Profile == profile && row.Correlated == correlated &&
			row.Custody == custody && row.Strategy == strategy {
			return row, true
		}
	}
	return FailoverRow{}, false
}

// Failover runs the failover-replanning experiment on the sweep engine:
// every recovery strategy pushes an identical transfer through the
// custody diamond while the bottleneck fails under each profile's seeded
// process, once per (profile, correlation, custody, strategy, seed).
// With cfg.Shard set, only that slice runs; with cfg.Checkpoint set,
// completed scenarios stream to disk and a rerun resumes instead of
// restarting.
func Failover(cfg FailoverConfig) (*FailoverResult, error) {
	cfg.applyDefaults()
	aggs, failed, err := runExperiment(cfg.Workers, cfg.Shard, cfg.Obs, cfg.Checkpoint, failoverLabel(cfg), failoverScenarios(cfg))
	if err != nil {
		return nil, err
	}
	if len(failed) > 0 {
		return nil, fmt.Errorf("failover %w", failed[0].Err)
	}
	return failoverCollect(cfg, aggs)
}

// FailoverMerge combines the checkpoints of a distributed failover run —
// one file per shard host — into the full result without executing any
// scenario.
func FailoverMerge(cfg FailoverConfig, checkpoints ...string) (*FailoverResult, error) {
	cfg.applyDefaults()
	aggs, err := mergeExperiment(failoverLabel(cfg), failoverScenarios(cfg), checkpoints...)
	if err != nil {
		return nil, err
	}
	return failoverCollect(cfg, aggs)
}

// failoverScenarios expands the profile × correlation × custody ×
// strategy grid. Seeds derive from the profile and correlation axes
// only, so every (custody, strategy) combination replays the same
// failure trace at each (profile, correlation, replica) — the comparison
// isolates the recovery policy. cfg must already have defaults applied.
func failoverScenarios(cfg FailoverConfig) []sweep.Scenario {
	profiles := map[string]FailoverProfile{}
	names := make([]string, len(cfg.Profiles))
	for i, p := range cfg.Profiles {
		names[i] = p.Name
		profiles[p.Name] = p
	}
	correlateds := make([]string, len(cfg.Correlations))
	for i, c := range cfg.Correlations {
		correlateds[i] = strconv.FormatBool(c)
	}
	custodies := make([]string, len(cfg.Custodies))
	for i, c := range cfg.Custodies {
		custodies[i] = c.String()
	}
	strategies := make([]string, len(cfg.Strategies))
	for i, s := range cfg.Strategies {
		strategies[i] = s.String()
	}
	grid := sweep.NewGrid().
		Axis("profile", names...).
		Axis("correlated", correlateds...).
		Axis("custody", custodies...).
		Axis("strategy", strategies...).
		SeedAxes("profile", "correlated")
	return grid.Expand(0, cfg.Seeds, func(pt sweep.Point, replica int, seed int64) sweep.RunFunc {
		prof := profiles[pt.Get("profile")]
		correlated, err := strconv.ParseBool(pt.Get("correlated"))
		if err != nil {
			panic(fmt.Sprintf("experiments: bad correlated %q: %v", pt.Get("correlated"), err))
		}
		custody, err := units.ParseByteSize(pt.Get("custody"))
		if err != nil {
			panic(fmt.Sprintf("experiments: bad custody %q: %v", pt.Get("custody"), err))
		}
		strategy, err := chunknet.ParseFailoverMode(pt.Get("strategy"))
		if err != nil {
			panic(fmt.Sprintf("experiments: %v", err))
		}
		s := sweep.ChunkSpec{
			Transport:    chunknet.INRPP,
			IngressRate:  cfg.IngressRate,
			EgressRate:   cfg.EgressRate,
			ChunkSize:    cfg.ChunkSize,
			Anticipation: 4096,
			Custody:      custody,
			Buffer:       cfg.Buffer,
			Transfers:    1,
			Chunks:       cfg.Chunks,
			Horizon:      cfg.Horizon,
			Ti:           50 * time.Millisecond,
			Outage:       prof.Outage,
			Maintenance:  prof.Maintenance,
			DetourRate:   prof.DetourRate,
			Failover:     strategy,
			Correlated:   correlated,
			Obs:          cfg.Obs,
			Trace:        cfg.Trace,
			TraceLabel:   sweep.ScenarioName(pt, replica),
		}
		return s.Run(seed)
	})
}

// failoverLabel derives the checkpoint config label: every non-axis
// parameter that changes the physics of the failing diamond, including
// each profile's failure process.
func failoverLabel(cfg FailoverConfig) string {
	label := fmt.Sprintf("failover ingress=%s egress=%s chunksize=%s chunks=%d horizon=%s seeds=%d",
		cfg.IngressRate, cfg.EgressRate, cfg.ChunkSize, cfg.Chunks, cfg.Horizon, cfg.Seeds)
	for _, p := range cfg.Profiles {
		label += fmt.Sprintf(" %s[detour=%s kind=%s up=%s down=%s maint=%d]",
			p.Name, p.DetourRate, p.Outage.Kind, p.Outage.Up, p.Outage.Down, len(p.Maintenance))
	}
	return label
}

// failoverCollect folds per-point aggregates into result rows. Points
// another shard ran are absent, so a sharded run yields a partial — but
// never wrong — result.
func failoverCollect(cfg FailoverConfig, aggs []sweep.Aggregate) (*FailoverResult, error) {
	res := &FailoverResult{}
	for _, a := range aggs {
		correlated, err := strconv.ParseBool(a.Point.Get("correlated"))
		if err != nil {
			return nil, fmt.Errorf("experiments: bad correlated in aggregate: %w", err)
		}
		custody, err := units.ParseByteSize(a.Point.Get("custody"))
		if err != nil {
			return nil, fmt.Errorf("experiments: bad custody in aggregate: %w", err)
		}
		strategy, err := chunknet.ParseFailoverMode(a.Point.Get("strategy"))
		if err != nil {
			return nil, fmt.Errorf("experiments: %w", err)
		}
		row := FailoverRow{
			Profile:         a.Point.Get("profile"),
			Correlated:      correlated,
			Custody:         custody,
			Strategy:        strategy,
			DeliveredShare:  a.Mean("delivered_share"),
			DetourFailovers: a.Mean("detour_failovers"),
			Evacuated:       a.Mean("evacuated"),
			CustodyPeak:     a.Mean("custody_peak_bytes"),
			ArcDownS:        a.Mean("arc_down_s"),
		}
		if a.Replicas > 0 {
			row.CompletedShare = a.Mean("completed")
		}
		// Pool completion times over the replicas that finished; a cell
		// where nothing completed keeps 0 and reads as a stall.
		if xs := a.Samples["completion_s"]; len(xs) > 0 {
			var sum float64
			for _, x := range xs {
				sum += x
			}
			row.MeanCompletionS = sum / float64(len(xs))
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// FailoverReport renders the recovery-strategy frontier as a table: one
// block per (profile, correlation), one row per (custody, strategy).
func FailoverReport(r *FailoverResult) *report.Table {
	t := report.New("failover replanning — recovery strategy frontier",
		"profile", "correlated", "custody", "strategy", "completed", "mean fct (s)", "delivered", "failovers", "evacuated")
	for _, row := range r.Rows {
		fct := "stalled"
		if row.MeanCompletionS > 0 {
			fct = report.F3(row.MeanCompletionS)
		}
		t.AddRow(
			row.Profile,
			strconv.FormatBool(row.Correlated),
			row.Custody.String(),
			row.Strategy.String(),
			report.F3(row.CompletedShare),
			fct,
			report.F3(row.DeliveredShare),
			report.F3(row.DetourFailovers),
			report.F3(row.Evacuated),
		)
	}
	return t
}
