package topo

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/units"
)

func TestJSONRoundTrip(t *testing.T) {
	g := New("rt")
	a := g.AddNode("alpha")
	b := g.AddNode("beta")
	c := g.AddNode("")
	g.MustAddLink(a, b, 10*units.Gbps, 5*time.Millisecond)
	g.MustAddLink(b, c, 2500*units.Mbps, time.Millisecond)

	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if back.Name() != "rt" || back.NumNodes() != 3 || back.NumLinks() != 2 {
		t.Fatalf("round trip lost shape: %s %d %d", back.Name(), back.NumNodes(), back.NumLinks())
	}
	l, ok := back.LinkBetween(0, 1)
	if !ok || l.Capacity != 10*units.Gbps || l.Delay != 5*time.Millisecond {
		t.Errorf("link 0-1 round trip wrong: %+v", l)
	}
	if back.Node(0).Name != "alpha" || back.Node(2).Name != "n2" {
		t.Errorf("node names lost: %q %q", back.Node(0).Name, back.Node(2).Name)
	}
}

func TestJSONRoundTripISP(t *testing.T) {
	g := MustBuildISP(VSNL)
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumNodes() != g.NumNodes() || back.NumLinks() != g.NumLinks() {
		t.Error("ISP round trip changed size")
	}
}

func TestReadJSONErrors(t *testing.T) {
	cases := []string{
		`{bad json`,
		`{"name":"x","nodes":[{"id":5}],"links":[]}`,                                         // non-dense IDs
		`{"name":"x","nodes":[{"id":0},{"id":1}],"links":[{"a":0,"b":1,"capacity":"nope"}]}`, // bad capacity
		`{"name":"x","nodes":[{"id":0}],"links":[{"a":0,"b":0,"capacity":"1Gbps"}]}`,         // self loop
	}
	for _, c := range cases {
		if _, err := ReadJSON(strings.NewReader(c)); err == nil {
			t.Errorf("ReadJSON(%q) should fail", c)
		}
	}
}
