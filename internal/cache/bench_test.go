package cache

import (
	"testing"
	"time"

	"repro/internal/units"
)

func BenchmarkCustodyOfferPop(b *testing.B) {
	c := NewCustody(units.GB)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now := time.Duration(i) * time.Microsecond
		c.Offer(uint64(i), 10*units.KB, now)
		if i%2 == 1 {
			c.Pop(now)
		}
	}
}

func BenchmarkLRUGetPut(b *testing.B) {
	l := NewLRU(units.MB)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := uint64(i % 500)
		if !l.Get(key) {
			l.Put(key, 4*units.KB)
		}
	}
}
