package chunknet

// This file implements the TCP-Reno-flavoured AIMD baseline: a sender-
// driven sliding window with slow start, additive increase, fast
// retransmit on triple duplicate acks and a coarse retransmission
// timeout, over the same links — whose stores act as plain drop-tail
// buffers in this mode. It is the "closed feedback loop … resource
// probing" design the paper argues against (§2.1), used as the
// comparison point in the custody/back-pressure experiment.

// aimdStart opens the flow: slow-start from a small window.
func (s *Sim) aimdStart(f *flowState) {
	s.aimdTrySend(f)
	s.aimdResetRTO(f)
}

// aimdTrySend pushes data while the window allows.
func (s *Sim) aimdTrySend(f *flowState) {
	for f.aimdNext < f.tr.Chunks && float64(f.aimdNext-f.lastCum) <= f.cwnd {
		s.sendChunkE2E(f, f.aimdNext)
		f.aimdNext++
	}
}

// sendChunkE2E pushes one chunk end-to-end along the flow's single path,
// with no detour budget — the send primitive shared by the AIMD and ARC
// baselines, which never pool in-network resources.
func (s *Sim) sendChunkE2E(f *flowState, seq int64) {
	p := s.makeDataPacket(f, seq)
	p.detourBudget = 0
	if len(f.dataPath) < 2 {
		s.deliver(p)
		s.freePacket(p)
		return
	}
	if !s.arcFor(f.tr.Src, f.dataPath[1]).send(p) {
		s.freePacket(p)
	}
}

// aimdAckData runs at the receiver when a chunk arrives: send a
// cumulative ack back to the sender.
func (s *Sim) aimdAckData(f *flowState) {
	p := s.newPacket()
	p.kind = pktAck
	p.flow = f.tr.ID
	p.cum = f.win.Next() - 1
	p.size = s.cfg.RequestSize
	p.rest = append(p.rest, f.reqPath[1:]...)
	p.prevHop = f.tr.Dst
	if len(f.reqPath) < 2 {
		s.onAck(p)
		s.freePacket(p)
		return
	}
	s.arcFor(f.tr.Dst, f.reqPath[1]).send(p)
}

// onAck is the AIMD sender's ack handler: window growth on progress,
// fast retransmit on triple duplicates.
func (s *Sim) onAck(p *packet) {
	f := s.flows[p.flow]
	if f.done && f.win.Done() {
		return
	}
	if p.cum > f.lastCum {
		f.lastCum = p.cum
		f.dup = 0
		if f.cwnd < f.ssthresh {
			f.cwnd++ // slow start
		} else {
			f.cwnd += 1 / f.cwnd // congestion avoidance
		}
		s.aimdResetRTO(f)
		s.aimdTrySend(f)
		return
	}
	f.dup++
	if f.dup >= 3 {
		f.dup = 0
		f.ssthresh = f.cwnd / 2
		if f.ssthresh < 2 {
			f.ssthresh = 2
		}
		f.cwnd = f.ssthresh
		s.aimdRetransmit(f)
	}
}

// aimdRetransmit resends the first unacknowledged chunk.
func (s *Sim) aimdRetransmit(f *flowState) {
	seq := f.lastCum + 1
	if seq >= f.tr.Chunks || f.win.Received(seq) {
		return
	}
	s.rep.Retransmits++
	s.mRetransmits.Inc()
	s.sendChunkE2E(f, seq)
	s.aimdResetRTO(f)
}

// aimdResetRTO (re)arms the retransmission timeout.
func (s *Sim) aimdResetRTO(f *flowState) {
	f.rto.Cancel()
	f.rto = s.des.After(s.cfg.RTO, f.timeoutFn)
}

// aimdTimeout is the coarse timeout: collapse to one segment and go back
// to the first unacked chunk.
func (s *Sim) aimdTimeout(f *flowState) {
	if f.done {
		return
	}
	s.mRTOFires.Inc()
	s.emitTrace("rto_fire", f.tr.ID, "", f.lastCum+1, 0)
	f.ssthresh = f.cwnd / 2
	if f.ssthresh < 2 {
		f.ssthresh = 2
	}
	f.cwnd = 1
	f.aimdNext = f.lastCum + 1
	s.aimdRetransmit(f)
}
