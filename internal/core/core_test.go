package core

import (
	"testing"
	"time"

	"repro/internal/units"
)

func TestPhaseString(t *testing.T) {
	if PhasePushData.String() != "push-data" ||
		PhaseDetour.String() != "detour" ||
		PhaseBackPressure.String() != "back-pressure" {
		t.Error("phase names wrong")
	}
	if Phase(9).String() != "Phase(9)" {
		t.Error("unknown phase should be explicit")
	}
}

func TestInterfaceTransitions(t *testing.T) {
	iface := NewInterface(10*units.Mbps, DefaultInterfaceConfig())
	if iface.Phase() != PhasePushData {
		t.Fatal("initial phase should be push-data")
	}
	// Under capacity: stays push-data.
	if got := iface.Update(8*units.Mbps, true); got != PhasePushData {
		t.Errorf("under capacity: %v", got)
	}
	// Demand reaches supply with a detour available: detour phase.
	if got := iface.Update(11*units.Mbps, true); got != PhaseDetour {
		t.Errorf("over capacity with detour: %v", got)
	}
	// Still congested, detour gone: back-pressure.
	if got := iface.Update(11*units.Mbps, false); got != PhaseBackPressure {
		t.Errorf("over capacity without detour: %v", got)
	}
	// Demand subsides: push-data again.
	if got := iface.Update(5*units.Mbps, false); got != PhasePushData {
		t.Errorf("subsided: %v", got)
	}
	if iface.Transitions() != 3 {
		t.Errorf("transitions = %d, want 3", iface.Transitions())
	}
}

func TestInterfaceHysteresis(t *testing.T) {
	iface := NewInterface(10*units.Mbps, InterfaceConfig{Theta: 1.0, Hysteresis: 0.1})
	iface.Update(10.5*units.Mbps, true) // enter detour
	// 9.5 is below theta (10) but above theta-hysteresis (9): must stay
	// congested to avoid flapping.
	if got := iface.Update(9.5*units.Mbps, true); got != PhaseDetour {
		t.Errorf("within hysteresis band: %v, want detour", got)
	}
	if got := iface.Update(8.9*units.Mbps, true); got != PhasePushData {
		t.Errorf("below hysteresis band: %v, want push-data", got)
	}
}

func TestInterfaceOverflow(t *testing.T) {
	iface := NewInterface(10*units.Mbps, DefaultInterfaceConfig())
	if got := iface.Overflow(13 * units.Mbps); got != 3*units.Mbps {
		t.Errorf("overflow = %v, want 3Mbps", got)
	}
	if got := iface.Overflow(7 * units.Mbps); got != 0 {
		t.Errorf("overflow under capacity = %v, want 0", got)
	}
}

func TestEstimatorEq1(t *testing.T) {
	// Router with 3 interfaces: requests forwarded by iface 0, split 3:1
	// between data returning via ifaces 1 and 2.
	chunk := units.ByteSize(1000) // 8000 bits
	e := NewEstimator(3, chunk, time.Second)
	e.RecordRequest(0, 1, 3)
	e.RecordRequest(0, 2, 1)
	if got := e.Ratio(0, 1); got != 0.75 {
		t.Errorf("y(0→1) = %v, want 0.75", got)
	}
	if got := e.Ratio(0, 2); got != 0.25 {
		t.Errorf("y(0→2) = %v, want 0.25", got)
	}
	if got := e.Ratio(1, 0); got != 0 {
		t.Errorf("ratio with no requests = %v, want 0", got)
	}

	e.Tick(time.Second)
	// 3 chunks × 8000 bits over 1s = 24 kbps anticipated on iface 1.
	if got := e.AnticipatedRate(1); got != 24*units.Kbps {
		t.Errorf("r_a(1) = %v, want 24Kbps", got)
	}
	if got := e.AnticipatedRate(2); got != 8*units.Kbps {
		t.Errorf("r_a(2) = %v, want 8Kbps", got)
	}
	if got := e.AnticipatedRate(0); got != 0 {
		t.Errorf("r_a(0) = %v, want 0", got)
	}
	// Counts reset after Tick.
	if got := e.Ratio(0, 1); got != 0 {
		t.Errorf("ratio after tick = %v, want 0", got)
	}
}

func TestEstimatorMultipleIngress(t *testing.T) {
	// Data for iface 2 announced via two different ingress interfaces
	// must sum (the central management entity of §3.3).
	e := NewEstimator(3, 1000, time.Second)
	e.RecordRequest(0, 2, 2)
	e.RecordRequest(1, 2, 3)
	e.Tick(time.Second)
	if got := e.AnticipatedRate(2); got != 40*units.Kbps {
		t.Errorf("r_a(2) = %v, want 40Kbps", got)
	}
}

func TestEstimatorElapsedWindow(t *testing.T) {
	e := NewEstimator(2, 1000, time.Second)
	e.RecordRequest(0, 1, 10)
	e.Tick(2 * time.Second) // window actually lasted 2s
	if got := e.AnticipatedRate(1); got != 40*units.Kbps {
		t.Errorf("r_a over 2s window = %v, want 40Kbps", got)
	}
	e.SetInterval(500 * time.Millisecond)
	if e.Interval() != 500*time.Millisecond {
		t.Error("SetInterval failed")
	}
	e.SetInterval(-1) // ignored
	if e.Interval() != 500*time.Millisecond {
		t.Error("negative interval should be ignored")
	}
}

func TestDecideUpstream(t *testing.T) {
	if DecideUpstream(false, true) != ActionDetour {
		t.Error("detour available should win")
	}
	if DecideUpstream(true, true) != ActionDetour {
		t.Error("even the sender prefers a detour")
	}
	if DecideUpstream(false, false) != ActionPropagate {
		t.Error("mid-path without detour should propagate")
	}
	if DecideUpstream(true, false) != ActionSenderClosedLoop {
		t.Error("sender without detour should close the loop")
	}
	if ActionDetour.String() != "detour" || ActionSenderClosedLoop.String() != "sender-closed-loop" {
		t.Error("action names wrong")
	}
}

func TestCustodyTarget(t *testing.T) {
	// 10GB free custody over a 2s horizon absorbs 40Gbps on top of the
	// link's own rate.
	got := CustodyTarget(10*units.Gbps, 10*units.GB, 2)
	if got != 50*units.Gbps {
		t.Errorf("custody target = %v, want 50Gbps", got)
	}
	if got := CustodyTarget(10*units.Gbps, units.GB, 0); got != 10*units.Gbps {
		t.Errorf("zero horizon should return the link rate, got %v", got)
	}
}
