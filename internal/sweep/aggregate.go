package sweep

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/report"
	"repro/internal/stats"
)

// Aggregate summarises all replicas of one grid point. Replica values and
// samples are accumulated in scenario order, so aggregation over the same
// result set is deterministic no matter how many workers produced it.
//
// Two representations exist. Exact aggregates (built by Aggregated, or by an
// Accumulator in AggExact mode) keep every raw value in Series/Samples.
// Sketch aggregates (an Accumulator in AggSketch mode, or AggAuto past its
// sample budget) hold only streaming Summaries and bounded quantile sketches
// in Stats/Sketches/SeriesSketches — O(sketch size) per point regardless of
// replica or sample count. Summary (and therefore Table/CSV/JSON rendering)
// is bit-identical between the two, because the streaming Summaries fold the
// same values in the same order the exact path replays them; only Percentile
// answers differ, within the sketch's documented rank-error bound.
type Aggregate struct {
	// Point is the grid cell being summarised.
	Point Point
	// Replicas counts successful results folded in.
	Replicas int
	// Failed counts results excluded because they carried an error.
	Failed int
	// Series maps metric name → one value per successful replica, in
	// scenario order (exact representation only).
	Series map[string][]float64
	// Samples maps sample-set name → values pooled across replicas, in
	// scenario order (exact representation only).
	Samples map[string][]float64
	// Stats maps metric name → streamed replica summary (sketch
	// representation only). Values fold in scenario order, so Summary
	// returns bits identical to the exact path's.
	Stats map[string]stats.Summary
	// Sketches maps sample-set name → bounded quantile sketch (sketch
	// representation only).
	Sketches map[string]*stats.GKSketch
	// SeriesSketches maps metric name → quantile sketch over the replica
	// series (sketch representation only), serving Percentile's
	// series fallback without retaining per-replica values.
	SeriesSketches map[string]*stats.GKSketch
}

// Aggregated groups results by point (in first-appearance order) and folds
// each successful result's metrics into its group. Errored results only
// increment Failed. Results the process never executed — another shard's
// scenarios, or unrestored checkpoint placeholders (see Skipped) — are
// excluded entirely, so a sharded run aggregates exactly what it ran.
func Aggregated(results []Result) []Aggregate {
	index := map[string]int{}
	var out []Aggregate
	for _, r := range results {
		if Skipped(r) {
			continue
		}
		key := r.Point.Key()
		i, ok := index[key]
		if !ok {
			i = len(out)
			index[key] = i
			out = append(out, Aggregate{
				Point:   r.Point,
				Series:  map[string][]float64{},
				Samples: map[string][]float64{},
			})
		}
		a := &out[i]
		if r.Err != nil {
			a.Failed++
			continue
		}
		a.Replicas++
		for name, v := range r.Metrics.Values {
			a.Series[name] = append(a.Series[name], v)
		}
		for name, xs := range r.Metrics.Samples {
			a.Samples[name] = append(a.Samples[name], xs...)
		}
	}
	return out
}

// Summary returns the replica summary (mean/std/min/max) for a metric. Both
// representations answer identically: the sketch path's streamed Summary
// folded the same values in the same (scenario) order this loop replays.
func (a *Aggregate) Summary(metric string) stats.Summary {
	if s, ok := a.Stats[metric]; ok {
		return s
	}
	var s stats.Summary
	for _, v := range a.Series[metric] {
		s.Add(v)
	}
	return s
}

// Mean returns the replica mean of a metric (zero when absent).
func (a *Aggregate) Mean(metric string) float64 { return a.Summary(metric).Mean() }

// Percentile returns the p-th percentile (p in [0,100]) over a pooled
// sample set, falling back to the per-replica series when no sample set of
// that name exists. Exact aggregates interpolate over the raw values; sketch
// aggregates answer from the bounded sketch, within its documented
// rank-error bound.
func (a *Aggregate) Percentile(name string, p float64) float64 {
	if xs, ok := a.Samples[name]; ok {
		return stats.Percentile(xs, p)
	}
	if sk, ok := a.Sketches[name]; ok {
		return sk.Percentile(p)
	}
	if sk, ok := a.SeriesSketches[name]; ok {
		return sk.Percentile(p)
	}
	return stats.Percentile(a.Series[name], p)
}

// metricNames returns this aggregate's scalar metric names, from whichever
// representation it carries.
func (a *Aggregate) metricNames() map[string]bool {
	seen := map[string]bool{}
	for name := range a.Series {
		seen[name] = true
	}
	for name := range a.Stats {
		seen[name] = true
	}
	return seen
}

// MetricNames returns the union of scalar metric names across aggregates,
// sorted.
func MetricNames(aggs []Aggregate) []string {
	seen := map[string]bool{}
	for _, a := range aggs {
		for name := range a.metricNames() {
			seen[name] = true
		}
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Table renders aggregates as a report table: one column per axis of the
// (first) point, then "mean±std" per metric. Passing no metrics selects the
// sorted union of all metric names.
func Table(title string, aggs []Aggregate, metrics ...string) *report.Table {
	if len(metrics) == 0 {
		metrics = MetricNames(aggs)
	}
	var headers []string
	if len(aggs) > 0 {
		for _, kv := range aggs[0].Point {
			headers = append(headers, kv.Key)
		}
	}
	headers = append(headers, "replicas")
	headers = append(headers, metrics...)
	t := report.New(title, headers...)
	for _, a := range aggs {
		row := make([]string, 0, len(headers))
		for _, kv := range a.Point {
			row = append(row, kv.Value)
		}
		rep := fmt.Sprintf("%d", a.Replicas)
		if a.Failed > 0 {
			rep += fmt.Sprintf(" (+%d failed)", a.Failed)
		}
		row = append(row, rep)
		for _, m := range metrics {
			s := a.Summary(m)
			switch {
			case s.N() == 0:
				row = append(row, "-")
			case s.N() == 1:
				row = append(row, report.F3(s.Mean()))
			default:
				row = append(row, fmt.Sprintf("%s ±%s", report.F3(s.Mean()), report.F3(s.Std())))
			}
		}
		t.AddRow(row...)
	}
	return t
}

// CSV renders aggregates as CSV with separate mean/std columns per metric.
func CSV(w io.Writer, aggs []Aggregate, metrics ...string) error {
	if len(metrics) == 0 {
		metrics = MetricNames(aggs)
	}
	var headers []string
	if len(aggs) > 0 {
		for _, kv := range aggs[0].Point {
			headers = append(headers, kv.Key)
		}
	}
	headers = append(headers, "replicas", "failed")
	for _, m := range metrics {
		headers = append(headers, m+"_mean", m+"_std")
	}
	t := report.New("", headers...)
	for _, a := range aggs {
		row := make([]string, 0, len(headers))
		for _, kv := range a.Point {
			row = append(row, kv.Value)
		}
		row = append(row, fmt.Sprintf("%d", a.Replicas), fmt.Sprintf("%d", a.Failed))
		for _, m := range metrics {
			s := a.Summary(m)
			if s.N() == 0 {
				// Distinguish "metric absent at this point" from a
				// measured zero, as Table's "-" does.
				row = append(row, "", "")
				continue
			}
			row = append(row, fmt.Sprintf("%g", s.Mean()), fmt.Sprintf("%g", s.Std()))
		}
		t.AddRow(row...)
	}
	return t.RenderCSV(w)
}

// jsonAggregate is the stable JSON shape of one aggregate.
type jsonAggregate struct {
	Point    map[string]string  `json:"point"`
	Replicas int                `json:"replicas"`
	Failed   int                `json:"failed,omitempty"`
	Mean     map[string]float64 `json:"mean"`
	Std      map[string]float64 `json:"std"`
}

// JSON renders aggregates as an indented JSON array. Map keys marshal in
// sorted order, so the output is deterministic.
func JSON(w io.Writer, aggs []Aggregate) error {
	out := make([]jsonAggregate, 0, len(aggs))
	for _, a := range aggs {
		j := jsonAggregate{
			Point:    map[string]string{},
			Replicas: a.Replicas,
			Failed:   a.Failed,
			Mean:     map[string]float64{},
			Std:      map[string]float64{},
		}
		for _, kv := range a.Point {
			j.Point[kv.Key] = kv.Value
		}
		for name := range a.metricNames() {
			s := a.Summary(name)
			j.Mean[name] = s.Mean()
			j.Std[name] = s.Std()
		}
		out = append(out, j)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
