package sweep

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/stats"
)

// AggMode selects an Accumulator's aggregation representation.
type AggMode int

const (
	// AggExact keeps every raw replica value and pooled sample, exactly
	// like the batch Aggregated path — byte-identical output, O(samples)
	// memory.
	AggExact AggMode = iota
	// AggSketch keeps streaming summaries plus bounded quantile sketches —
	// O(sketch size) memory per grid point regardless of replica or sample
	// count; Percentile answers within the sketch's documented bound.
	AggSketch
	// AggAuto starts exact and cuts over to the sketch representation the
	// moment pooled raw values — sample-set values plus per-replica series
	// values — exceed the accumulator's SampleBudget. The cutover replays
	// the pooled history into fresh sketches in the same order, so an auto
	// accumulator's final state is bit-identical to either a pure AggExact
	// run (budget never crossed) or a pure AggSketch run (budget crossed)
	// of the same results.
	AggAuto
)

// String renders the canonical flag value ("exact", "sketch", "auto").
func (m AggMode) String() string {
	switch m {
	case AggExact:
		return "exact"
	case AggSketch:
		return "sketch"
	case AggAuto:
		return "auto"
	default:
		return fmt.Sprintf("AggMode(%d)", int(m))
	}
}

// ParseAggMode maps "exact"/"sketch"/"auto" (any case) to an AggMode.
func ParseAggMode(s string) (AggMode, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "exact":
		return AggExact, nil
	case "sketch":
		return AggSketch, nil
	case "auto":
		return AggAuto, nil
	default:
		return 0, fmt.Errorf("sweep: unknown aggregation mode %q (known: exact, sketch, auto)", s)
	}
}

// DefaultSampleBudget is the pooled-raw-sample count above which an AggAuto
// accumulator cuts over to sketches: 2²⁰ float64 samples ≈ 8 MB per run,
// comfortably inside one host while far below the 10⁶-scenario grids that
// motivated sketching.
const DefaultSampleBudget = 1 << 20

// AccumulatorConfig parameterises NewAccumulator.
type AccumulatorConfig struct {
	// Mode selects the representation (default AggExact).
	Mode AggMode
	// Eps is the sketches' rank-error fraction; ≤ 0 means
	// stats.DefaultSketchEps, and it must be < 0.5 (NewAccumulator panics
	// otherwise, at construction rather than mid-sweep). Ignored by
	// AggExact.
	Eps float64
	// SampleBudget is the pooled-raw-value count (sample-set values plus
	// per-replica series values) above which AggAuto cuts over to
	// sketches; ≤ 0 means DefaultSampleBudget. Ignored by the other
	// modes.
	SampleBudget int64
}

// Accumulator folds Results into per-point Aggregates as they arrive,
// instead of materialising the full []Result first. Results may be observed
// in any order — workers finish when they finish — but folding happens in
// scenario order behind a reassembly cursor, so the aggregates (and, in
// exact mode, their bytes) are identical to Aggregated over the same
// results no matter the arrival schedule. Results that arrive ahead of the
// cursor wait in a pending set of shallow Result copies (metric maps stay
// shared with the caller's values, not duplicated); in a live run its size
// tracks the completion skew of the moment (≈ in-flight scenarios). A
// prior-slice resume (Runner.ResumeAccumulate) parks restored results
// behind the first re-running gap there; the streaming checkpoint resume
// (Runner.ResumeCheckpointAccumulate) leaves them on disk instead and
// feeds each one exactly when the cursor reaches it.
//
// Observe is safe for concurrent use; the Runner's Accumulate/
// ResumeAccumulate drive it from the worker pool, and MergeCheckpointsInto
// drives it from shard checkpoint files in scenario order.
type Accumulator struct {
	mode     AggMode
	eps      float64
	budget   int64
	sketched bool // true in AggSketch, or AggAuto past its budget

	mu      sync.Mutex
	byName  map[string]int
	seen    []bool
	pending map[int]*Result
	next    int // fold cursor: the next scenario index to fold

	index     map[string]int // point key → aggs index
	aggs      []Aggregate
	rawValues int64 // pooled raw values held (exact phase): samples + series
}

// NewAccumulator returns an accumulator for exactly the given scenario
// list. Every scenario must be observed exactly once — run, restored,
// failed or skipped — before Aggregates will answer.
func NewAccumulator(cfg AccumulatorConfig, scenarios []Scenario) *Accumulator {
	if cfg.Eps <= 0 {
		cfg.Eps = stats.DefaultSketchEps
	}
	if cfg.Eps >= 0.5 {
		// Fail at construction, not hours later at the first sketch: an
		// AggAuto run allocates no sketch until its budget cutover.
		panic(fmt.Sprintf("sweep: accumulator sketch eps %g must be < 0.5", cfg.Eps))
	}
	if cfg.SampleBudget <= 0 {
		cfg.SampleBudget = DefaultSampleBudget
	}
	a := &Accumulator{
		mode:     cfg.Mode,
		eps:      cfg.Eps,
		budget:   cfg.SampleBudget,
		sketched: cfg.Mode == AggSketch,
		byName:   make(map[string]int, len(scenarios)),
		seen:     make([]bool, len(scenarios)),
		pending:  make(map[int]*Result),
		index:    make(map[string]int),
	}
	for i, sc := range scenarios {
		a.byName[sc.Name] = i
	}
	return a
}

// Mode returns the accumulator's configured mode.
func (a *Accumulator) Mode() AggMode { return a.mode }

// Sketched reports whether the accumulator currently holds the sketch
// representation (always for AggSketch; for AggAuto, once the sample budget
// was crossed).
func (a *Accumulator) Sketched() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.sketched
}

// Pending returns the number of observed results waiting behind the fold
// cursor — instrumentation for tests and progress displays.
func (a *Accumulator) Pending() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.pending)
}

// Next returns the fold cursor: the scenario index whose result the
// accumulator will fold next. Streaming suppliers (the checkpoint resume)
// use it to hand over exactly the result the cursor is waiting for, so
// nothing parks.
func (a *Accumulator) Next() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.next
}

// Observe folds one scenario's result. Results naming a scenario outside
// the accumulator's list, or a scenario already observed, are rejected —
// that is a wiring bug, not data. Safe for concurrent use.
func (a *Accumulator) Observe(r Result) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	i, ok := a.byName[r.Name]
	if !ok {
		return fmt.Errorf("sweep: accumulator: unknown scenario %q", r.Name)
	}
	if a.seen[i] {
		return fmt.Errorf("sweep: accumulator: scenario %q observed twice", r.Name)
	}
	a.seen[i] = true
	if i == a.next {
		a.fold(&r)
		a.next++
		for {
			p, ok := a.pending[a.next]
			if !ok {
				break
			}
			delete(a.pending, a.next)
			a.fold(p)
			a.next++
		}
		return nil
	}
	held := r
	a.pending[i] = &held
	return nil
}

// fold merges one result (the next in scenario order) into its point's
// aggregate. Mirrors Aggregated exactly: skipped results vanish, errors
// count as Failed, successes append/stream their metrics.
func (a *Accumulator) fold(r *Result) {
	if Skipped(*r) {
		return
	}
	key := r.Point.Key()
	i, ok := a.index[key]
	if !ok {
		i = len(a.aggs)
		a.index[key] = i
		agg := Aggregate{Point: r.Point}
		if a.sketched {
			agg.Stats = map[string]stats.Summary{}
			agg.Sketches = map[string]*stats.GKSketch{}
			agg.SeriesSketches = map[string]*stats.GKSketch{}
		} else {
			agg.Series = map[string][]float64{}
			agg.Samples = map[string][]float64{}
		}
		a.aggs = append(a.aggs, agg)
	}
	agg := &a.aggs[i]
	if r.Err != nil {
		agg.Failed++
		return
	}
	agg.Replicas++
	if a.sketched {
		a.foldSketch(agg, r.Metrics)
		return
	}
	for name, v := range r.Metrics.Values {
		agg.Series[name] = append(agg.Series[name], v)
		a.rawValues++
	}
	for name, xs := range r.Metrics.Samples {
		agg.Samples[name] = append(agg.Samples[name], xs...)
		a.rawValues += int64(len(xs))
	}
	if a.mode == AggAuto && a.rawValues > a.budget {
		a.cutover()
	}
}

// foldSketch streams one result's metrics into the bounded representation.
func (a *Accumulator) foldSketch(agg *Aggregate, m Metrics) {
	for name, v := range m.Values {
		s := agg.Stats[name]
		s.Add(v)
		agg.Stats[name] = s
		sk := agg.SeriesSketches[name]
		if sk == nil {
			sk = stats.NewGKSketch(a.eps)
			agg.SeriesSketches[name] = sk
		}
		sk.Add(v)
	}
	for name, xs := range m.Samples {
		sk := agg.Sketches[name]
		if sk == nil {
			sk = stats.NewGKSketch(a.eps)
			agg.Sketches[name] = sk
		}
		for _, x := range xs {
			sk.Add(x)
		}
	}
}

// cutover converts every aggregate from the exact to the sketch
// representation by replaying the pooled history, in pooled (= scenario)
// order, into fresh summaries and sketches — exactly the operations a pure
// AggSketch accumulator would have performed, so the post-cutover state is
// bit-identical to one. The raw slices are released.
func (a *Accumulator) cutover() {
	a.sketched = true
	for i := range a.aggs {
		agg := &a.aggs[i]
		agg.Stats = map[string]stats.Summary{}
		agg.Sketches = map[string]*stats.GKSketch{}
		agg.SeriesSketches = map[string]*stats.GKSketch{}
		for name, vs := range agg.Series {
			var s stats.Summary
			sk := stats.NewGKSketch(a.eps)
			for _, v := range vs {
				s.Add(v)
				sk.Add(v)
			}
			agg.Stats[name] = s
			agg.SeriesSketches[name] = sk
		}
		for name, xs := range agg.Samples {
			sk := stats.NewGKSketch(a.eps)
			for _, x := range xs {
				sk.Add(x)
			}
			agg.Sketches[name] = sk
		}
		agg.Series = nil
		agg.Samples = nil
	}
	a.rawValues = 0
}

// Aggregates returns the folded aggregates, in first-appearance (scenario)
// order — the same order and, in exact mode, the same contents as
// Aggregated over the full result slice. It fails if any scenario has not
// been observed yet: a partial read would silently drop grid points.
func (a *Accumulator) Aggregates() ([]Aggregate, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.next != len(a.seen) {
		return nil, fmt.Errorf("sweep: accumulator: %d of %d scenarios not yet observed",
			len(a.seen)-a.next-len(a.pending), len(a.seen))
	}
	return a.aggs, nil
}
